module M = Wf.Wmodule
module W = Wf.Workflow
module R = Rel.Relation
module S = Rel.Schema
module T = Rel.Tuple
module P = Rel.Plan
module Hset = Svutil.Hset
module Listx = Svutil.Listx

let module_hidden m ~hidden = Listx.inter (M.attr_names m) hidden

let module_visible m ~hidden = Listx.diff (M.attr_names m) hidden

let compose_safe w ~gamma ~hidden =
  List.for_all
    (fun m -> Standalone.is_safe m ~visible:(module_visible m ~hidden) ~gamma)
    (W.modules w)

let exposed_publics w ~public ~hidden =
  List.filter
    (fun name ->
      match W.find_module w name with
      | None -> invalid_arg ("Wprivacy: no module " ^ name)
      | Some m -> module_hidden m ~hidden <> [])
    public

let theorem8_safe w ~public ~privatized ~gamma ~hidden =
  let privates =
    List.filter (fun (m : M.t) -> not (List.mem m.M.name public)) (W.modules w)
  in
  List.for_all
    (fun m -> Standalone.is_safe m ~visible:(module_visible m ~hidden) ~gamma)
    privates
  && List.for_all
       (fun name -> List.mem name privatized)
       (exposed_publics w ~public ~hidden)

let reachable_inputs w m =
  let r = W.relation w in
  let schema = R.schema r in
  let plan = P.ordered schema (M.input_names m) in
  R.rows r |> List.map (P.apply plan) |> List.sort_uniq T.compare

(* Shared state for the OUT-size computations: one (input, seen-outputs,
   vacuous) cell per private module and reachable input. Worlds are
   relations over the workflow schema, so the projection plans are
   compiled once up front. Definition 5 is universally quantified: a
   world omitting [x] makes every output of the module's range vacuously
   possible, so such a world saturates the count. *)
type out_state = {
  os_name : string;
  os_range_size : int;
  os_in_plan : P.t;
  os_out_plan : P.t;
  os_cells : (T.t * T.t Hset.t * bool ref) list;
}

let out_states w ~public =
  let schema = w.W.schema in
  W.modules w
  |> List.filter (fun (m : M.t) -> not (List.mem m.M.name public))
  |> List.map (fun (m : M.t) ->
         {
           os_name = m.M.name;
           os_range_size = S.domain_size (M.output_schema m);
           os_in_plan = P.ordered schema (M.input_names m);
           os_out_plan = P.ordered schema (M.output_names m);
           os_cells =
             List.map
               (fun x -> (x, Hset.create 8, ref false))
               (reachable_inputs w m);
         })

let record_world states world =
  List.iter
    (fun st ->
      let present = Hashtbl.create 8 in
      R.iter world ~f:(fun row ->
          Hashtbl.replace present
            (P.apply st.os_in_plan row)
            (P.apply st.os_out_plan row));
      List.iter
        (fun (x, seen, vacuous) ->
          match Hashtbl.find_opt present x with
          | Some y -> Hset.add seen y
          | None -> vacuous := true)
        st.os_cells)
    states

let all_cells p states =
  List.for_all (fun st -> List.for_all (p st) st.os_cells) states

(* Counts only grow while worlds stream in, and a vacuous cell is pinned
   at the range size — the maximum any cell can reach. So the exact
   counts are determined (and enumeration can stop) as soon as every
   cell is saturated. *)
let saturated st (_, seen, vacuous) =
  !vacuous || Hset.cardinal seen = st.os_range_size

let out_sizes w ~public ~visible ~max_worlds =
  let states = out_states w ~public in
  ignore
    (Worlds.exists_workflow_world_functions ?max_worlds w ~public ~visible
       ~f:(fun world ->
         record_world states world;
         all_cells saturated states));
  List.map
    (fun st ->
      ( st.os_name,
        List.map
          (fun (x, seen, vacuous) ->
            (x, if !vacuous then st.os_range_size else Hset.cardinal seen))
          st.os_cells ))
    states

let min_out_size_brute ?max_worlds w ~public ~visible ~module_name =
  (match W.find_module w module_name with
  | Some _ -> ()
  | None -> invalid_arg ("Wprivacy: no module " ^ module_name));
  match List.assoc_opt module_name (out_sizes w ~public ~visible ~max_worlds) with
  | None -> invalid_arg ("Wprivacy: module is public: " ^ module_name)
  | Some sizes -> List.fold_left (fun acc (_, n) -> min acc n) max_int sizes

let is_safe_brute ?max_worlds w ~public ~gamma ~visible =
  let states = out_states w ~public in
  (* A cell's final count never exceeds the module's range size, so a
     range smaller than gamma refutes safety before any enumeration. *)
  if not (all_cells (fun st _ -> st.os_range_size >= gamma) states) then false
  else begin
    (* Once a cell has gamma distinct outputs (or is vacuous, hence
       pinned at range >= gamma) it stays safe; stop at the first world
       that makes every cell so. *)
    let proven _st (_, seen, vacuous) =
      !vacuous || Hset.cardinal seen >= gamma
    in
    ignore
      (Worlds.exists_workflow_world_functions ?max_worlds w ~public ~visible
         ~f:(fun world ->
           record_world states world;
           all_cells proven states));
    all_cells proven states
  end
