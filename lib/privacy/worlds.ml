module M = Wf.Wmodule
module W = Wf.Workflow
module R = Rel.Relation
module S = Rel.Schema
module T = Rel.Tuple
module P = Rel.Plan
module Hset = Svutil.Hset

let default_max = Worlds_naive.default_max
let pow_int = Worlds_naive.pow_int
let mul_sat = Worlds_naive.mul_sat
let guard = Worlds_naive.guard

(* ------------------------------------------------------------------ *)
(* The pruned slot search                                              *)
(*                                                                     *)
(* Every enumerator below is an assignment of "slots" (input tuples)   *)
(* to "choices" (candidate rows, possibly absent). Instead of testing  *)
(* each of the (choices+1)^slots candidate relations against the view  *)
(* afterwards, we compile the view into per-slot candidate lists and   *)
(* backtrack:                                                          *)
(*   - a candidate row is valid only if its visible projection is a    *)
(*     view tuple (invalid rows prune the whole subtree);              *)
(*   - each view tuple has a last slot that can produce it; passing    *)
(*     that slot without covering the tuple prunes the subtree;        *)
(*   - cross-row constraints (per-module FDs) are checked when a row   *)
(*     is placed, through commit/uncommit hooks.                       *)
(* A leaf of the surviving tree IS a world; no filtering remains.      *)
(* ------------------------------------------------------------------ *)

type search = {
  slot_rows : (T.t * int) array array;
      (* per slot: valid (row, view id) candidates, in choice order *)
  allow_absent : bool array;
  deadlines : int list array;  (* view ids last producible at this slot *)
  n_view : int;
  feasible : bool;  (* false iff some view tuple has no producer *)
}

let make_search ~slot_rows ~allow_absent ~n_view =
  let slots = Array.length slot_rows in
  let last = Array.make (max n_view 1) (-1) in
  Array.iteri
    (fun i cands ->
      Array.iter (fun (_, vid) -> if last.(vid) < i then last.(vid) <- i) cands)
    slot_rows;
  let feasible =
    n_view = 0 || Array.for_all (fun l -> l >= 0) (Array.sub last 0 n_view)
  in
  let deadlines = Array.make (max slots 1) [] in
  if feasible then
    Array.iteri
      (fun vid l -> if vid < n_view then deadlines.(l) <- vid :: deadlines.(l))
      last;
  { slot_rows; allow_absent; deadlines; n_view; feasible }

(* [commit i row] places a row (false = constraint conflict, state
   unchanged); [uncommit i row] undoes a successful commit. [on_world]
   receives the placed rows (unspecified order) and returns [false] to
   stop the whole search. *)
let run_search ?(metrics = Svutil.Metrics.nop) s ~commit ~uncommit ~on_world =
  (* Hot loop: prune/leaf counts accumulate locally and flush once per
     search. A pruned branch is a slot choice rejected before recursing
     (constraint conflict or an uncoverable view tuple). *)
  let enumerated = ref 0 in
  let pruned = ref 0 in
  if s.feasible then begin
    let slots = Array.length s.slot_rows in
    let covered = Array.make (max s.n_view 1) 0 in
    let stop = ref false in
    let deadline_ok i = List.for_all (fun v -> covered.(v) > 0) s.deadlines.(i) in
    let rec go i acc_rows =
      if not !stop then
        if i = slots then begin
          incr enumerated;
          if not (on_world acc_rows) then stop := true
        end
        else begin
          let cands = s.slot_rows.(i) in
          let n = Array.length cands in
          let j = ref 0 in
          while (not !stop) && !j < n do
            let row, vid = cands.(!j) in
            if commit i row then begin
              covered.(vid) <- covered.(vid) + 1;
              if deadline_ok i then go (i + 1) (row :: acc_rows)
              else incr pruned;
              covered.(vid) <- covered.(vid) - 1;
              uncommit i row
            end
            else incr pruned;
            incr j
          done;
          (* The absent choice comes last, matching the naive oracle's
             assignment order. *)
          if (not !stop) && s.allow_absent.(i) then begin
            if deadline_ok i then go (i + 1) acc_rows else incr pruned
          end
        end
    in
    go 0 []
  end;
  Svutil.Metrics.count metrics "worlds.enumerated" !enumerated;
  Svutil.Metrics.count metrics "worlds.pruned" !pruned

let no_commit _ _ = true
let no_uncommit _ _ = ()

let compile_view view =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i t -> Hashtbl.replace tbl t i) (R.rows view);
  (tbl, R.size view)

(* Incremental per-module functional-dependency state: commit inserts
   each module's (input, output) projection of the row, rejecting on a
   conflict; uncommit removes what the matching commit inserted. *)
let fd_hooks ~schema ~slots mods =
  let tables =
    Array.of_list
      (List.map
         (fun (m : M.t) ->
           ( P.ordered schema (M.input_names m),
             P.ordered schema (M.output_names m),
             Hashtbl.create 32 ))
         mods)
  in
  let journal = Array.make (max slots 1) [] in
  let commit i row =
    let added = ref [] in
    let ok =
      try
        Array.iter
          (fun (in_plan, out_plan, tbl) ->
            let k = P.apply in_plan row in
            let v = P.apply out_plan row in
            match Hashtbl.find_opt tbl k with
            | Some v' -> if not (T.equal v v') then raise Exit
            | None ->
                Hashtbl.replace tbl k v;
                added := (tbl, k) :: !added)
          tables;
        true
      with Exit -> false
    in
    if ok then journal.(i) <- !added
    else List.iter (fun (tbl, k) -> Hashtbl.remove tbl k) !added;
    ok
  in
  let uncommit i _row =
    List.iter (fun (tbl, k) -> Hashtbl.remove tbl k) journal.(i);
    journal.(i) <- []
  in
  (commit, uncommit)

(* ------------------------------------------------------------------ *)
(* Standalone worlds: partial functions Dom -> Range                   *)
(* ------------------------------------------------------------------ *)

type standalone_compiled = {
  sa_search : search;
  sa_schema : S.t;
  sa_dom : T.t array;
  sa_in_width : int;
}

let compile_standalone ?(max_worlds = default_max) m ~visible =
  let in_schema = M.input_schema m and out_schema = M.output_schema m in
  let dom = Array.of_list (S.all_tuples in_schema) in
  let range = Array.of_list (S.all_tuples out_schema) in
  let n_range = Array.length range in
  let slots = Array.length dom in
  guard "standalone_worlds" (pow_int (n_range + 1) slots) max_worlds;
  let schema = R.schema m.M.table in
  let view = R.project m.M.table visible in
  let vis_plan = P.restrict schema visible in
  let view_ids, n_view = compile_view view in
  let slot_rows =
    Array.map
      (fun x ->
        Array.of_seq
          (Seq.filter_map
             (fun v ->
               let row = Array.append x range.(v) in
               match Hashtbl.find_opt view_ids (P.apply vis_plan row) with
               | Some vid -> Some (row, vid)
               | None -> None)
             (Seq.init n_range Fun.id)))
      dom
  in
  {
    sa_search = make_search ~slot_rows ~allow_absent:(Array.make slots true) ~n_view;
    sa_schema = schema;
    sa_dom = dom;
    sa_in_width = S.size in_schema;
  }

let fold_standalone_worlds ?max_worlds ?metrics m ~visible ~init ~f =
  let c = compile_standalone ?max_worlds m ~visible in
  let acc = ref init in
  run_search ?metrics c.sa_search ~commit:no_commit ~uncommit:no_uncommit
    ~on_world:(fun rows ->
      acc := f !acc (R.create c.sa_schema rows);
      true);
  !acc

let standalone_worlds ?max_worlds ?metrics m ~visible =
  List.rev
    (fold_standalone_worlds ?max_worlds ?metrics m ~visible ~init:[]
       ~f:(fun acc w -> w :: acc))

let count_standalone_worlds ?max_worlds ?metrics m ~visible =
  let c = compile_standalone ?max_worlds m ~visible in
  let n = ref 0 in
  run_search ?metrics c.sa_search ~commit:no_commit ~uncommit:no_uncommit
    ~on_world:(fun _ ->
      incr n;
      true);
  !n

let exists_standalone_world ?max_worlds ?metrics m ~visible ~f =
  let c = compile_standalone ?max_worlds m ~visible in
  let found = ref false in
  run_search ?metrics c.sa_search ~commit:no_commit ~uncommit:no_uncommit
    ~on_world:(fun rows ->
      if f (R.create c.sa_schema rows) then found := true;
      not !found);
  !found

let standalone_out_set ?max_worlds ?metrics m ~visible ~input =
  let c = compile_standalone ?max_worlds m ~visible in
  let slots = Array.length c.sa_dom in
  let rec find_slot i =
    if i >= slots then None
    else if T.equal c.sa_dom.(i) input then Some i
    else find_slot (i + 1)
  in
  match find_slot 0 with
  | None -> []
  | Some sx ->
      (* y is a possible output for [input] iff fixing the slot to the
         row (input, y) still admits a completion to a full world. *)
      let outs =
        Array.to_list c.sa_search.slot_rows.(sx)
        |> List.filter_map (fun cand ->
               let slot_rows = Array.copy c.sa_search.slot_rows in
               slot_rows.(sx) <- [| cand |];
               let allow_absent = Array.copy c.sa_search.allow_absent in
               allow_absent.(sx) <- false;
               let s = { c.sa_search with slot_rows; allow_absent } in
               let found = ref false in
               run_search ?metrics s ~commit:no_commit ~uncommit:no_uncommit
                 ~on_world:(fun _ ->
                   found := true;
                   false);
               if !found then
                 let row = fst cand in
                 Some
                   (Array.sub row c.sa_in_width
                      (Array.length row - c.sa_in_width))
               else None)
      in
      List.sort T.compare outs

(* ------------------------------------------------------------------ *)
(* Workflow worlds                                                     *)
(*                                                                     *)
(* Both workflow enumerators assign one slot per initial-input tuple;  *)
(* a choice is a completion of the non-initial attributes. Public      *)
(* modules and the view prune per-slot candidates; private-module FDs  *)
(* are enforced incrementally by the commit hooks. Function-family     *)
(* worlds (Lemma 1) are exactly the relations with a row for every     *)
(* initial input, so they use the same search without the absent       *)
(* choice — each surviving leaf is one world, no dedup needed.         *)
(* ------------------------------------------------------------------ *)

type workflow_compiled = {
  wf_search : search;
  wf_schema : S.t;
  wf_privates : M.t list;
}

let public_row_filter ~schema mods ~public =
  let compiled =
    List.filter_map
      (fun (m : M.t) ->
        if not (List.mem m.M.name public) then None
        else begin
          let mschema = R.schema m.M.table in
          let key_plan = P.ordered mschema (M.input_names m) in
          let val_plan = P.ordered mschema (M.output_names m) in
          let tbl = Hashtbl.create (R.size m.M.table) in
          R.iter m.M.table ~f:(fun row ->
              Hashtbl.replace tbl (P.apply key_plan row) (P.apply val_plan row));
          Some
            ( P.ordered schema (M.input_names m),
              P.ordered schema (M.output_names m),
              tbl )
        end)
      mods
  in
  fun row ->
    List.for_all
      (fun (in_plan, out_plan, tbl) ->
        match Hashtbl.find_opt tbl (P.apply in_plan row) with
        | Some y -> T.equal y (P.apply out_plan row)
        | None -> false)
      compiled

let compile_workflow ~guard_name ~guard_count ~absent ~max_worlds w ~public
    ~visible =
  let schema = w.W.schema in
  let initial = W.initial_names w in
  let init_schema = S.restrict schema initial in
  let rest_names =
    List.filter (fun n -> not (List.mem n initial)) (S.names schema)
  in
  let rest_schema = S.restrict schema rest_names in
  let dom = Array.of_list (S.all_tuples init_schema) in
  let completions = Array.of_list (S.all_tuples rest_schema) in
  let slots = Array.length dom in
  guard guard_name (guard_count ~slots ~n_comp:(Array.length completions))
    max_worlds;
  let base = W.relation w in
  let view = R.project base visible in
  let vis_plan = P.restrict schema visible in
  let view_ids, n_view = compile_view view in
  let mods = W.modules w in
  let publics_ok = public_row_filter ~schema mods ~public in
  let slot_rows =
    Array.map
      (fun x ->
        (* Initial attributes are the schema prefix, so a row is just
           initial values followed by a completion. *)
        Array.of_seq
          (Seq.filter_map
             (fun ci ->
               let row = Array.append x completions.(ci) in
               if not (publics_ok row) then None
               else
                 match Hashtbl.find_opt view_ids (P.apply vis_plan row) with
                 | Some vid -> Some (row, vid)
                 | None -> None)
             (Seq.init (Array.length completions) Fun.id)))
      dom
  in
  {
    wf_search =
      make_search ~slot_rows ~allow_absent:(Array.make slots absent) ~n_view;
    wf_schema = schema;
    wf_privates =
      List.filter (fun (m : M.t) -> not (List.mem m.M.name public)) mods;
  }

let function_space_size w ~public =
  List.fold_left
    (fun acc (m : M.t) ->
      if List.mem m.M.name public then acc
      else
        mul_sat acc
          (pow_int
             (S.domain_size (M.output_schema m))
             (S.domain_size (M.input_schema m))))
    1 (W.modules w)

(* The pruned function-family search assumes every initial input yields
   a row, which holds only when every public module is total; fall back
   to the naive oracle otherwise. *)
let partial_public w ~public =
  List.exists
    (fun (m : M.t) ->
      List.mem m.M.name public
      && (match S.domain_size (M.input_schema m) with
         | n -> R.size m.M.table < n
         | exception Failure _ -> true))
    (W.modules w)

let compile_workflow_functions ?(max_worlds = default_max) w ~public ~visible =
  let count ~slots:_ ~n_comp:_ = function_space_size w ~public in
  compile_workflow ~guard_name:"workflow_worlds_functions" ~guard_count:count
    ~absent:false ~max_worlds w ~public ~visible

let fold_workflow_worlds_functions ?max_worlds ?metrics w ~public ~visible
    ~init ~f =
  if partial_public w ~public then
    List.fold_left f init
      (Worlds_naive.workflow_worlds_functions ?max_worlds w ~public ~visible)
  else begin
    let c = compile_workflow_functions ?max_worlds w ~public ~visible in
    let commit, uncommit =
      fd_hooks ~schema:c.wf_schema
        ~slots:(Array.length c.wf_search.slot_rows)
        c.wf_privates
    in
    let acc = ref init in
    run_search ?metrics c.wf_search ~commit ~uncommit ~on_world:(fun rows ->
        acc := f !acc (R.create c.wf_schema rows);
        true);
    !acc
  end

let exists_workflow_world_functions ?max_worlds ?metrics w ~public ~visible
    ~f =
  if partial_public w ~public then
    List.exists f
      (Worlds_naive.workflow_worlds_functions ?max_worlds w ~public ~visible)
  else begin
    let c = compile_workflow_functions ?max_worlds w ~public ~visible in
    let commit, uncommit =
      fd_hooks ~schema:c.wf_schema
        ~slots:(Array.length c.wf_search.slot_rows)
        c.wf_privates
    in
    let found = ref false in
    run_search ?metrics c.wf_search ~commit ~uncommit ~on_world:(fun rows ->
        if f (R.create c.wf_schema rows) then found := true;
        not !found);
    !found
  end

let workflow_worlds_functions ?max_worlds ?metrics w ~public ~visible =
  fold_workflow_worlds_functions ?max_worlds ?metrics w ~public ~visible
    ~init:[] ~f:(fun acc w -> w :: acc)
  |> List.sort (fun a b -> compare (R.rows a) (R.rows b))

let workflow_out_set ?max_worlds ?metrics w ~public ~visible ~module_name
    ~input =
  let m =
    match W.find_module w module_name with
    | Some m -> m
    | None -> invalid_arg ("Worlds.workflow_out_set: no module " ^ module_name)
  in
  let schema = w.W.schema in
  let in_plan = P.ordered schema (M.input_names m) in
  let out_plan = P.ordered schema (M.output_names m) in
  let range_size = S.domain_size (M.output_schema m) in
  let seen = Hset.create 16 in
  let vacuous = ref false in
  let saturated () = !vacuous || Hset.cardinal seen = range_size in
  ignore
    (exists_workflow_world_functions ?max_worlds ?metrics w ~public ~visible
       ~f:(fun world ->
         let seen_input = ref false in
         R.iter world ~f:(fun row ->
             if T.equal (P.apply in_plan row) input then begin
               seen_input := true;
               Hset.add seen (P.apply out_plan row)
             end);
         (* Definition 5 is universally quantified: a world in which
            [input] never occurs makes every output vacuously
            possible. *)
         if not !seen_input then vacuous := true;
         saturated ()));
  if !vacuous then S.all_tuples (M.output_schema m)
  else List.sort T.compare (Hset.elements seen)

(* ------------------------------------------------------------------ *)
(* Literal workflow worlds: partial maps from initial inputs to tuples *)
(* ------------------------------------------------------------------ *)

let workflow_worlds_tuples ?(max_worlds = default_max) ?metrics w ~public
    ~visible =
  let count ~slots ~n_comp = pow_int (n_comp + 1) slots in
  let c =
    compile_workflow ~guard_name:"workflow_worlds_tuples" ~guard_count:count
      ~absent:true ~max_worlds w ~public ~visible
  in
  let commit, uncommit =
    fd_hooks ~schema:c.wf_schema
      ~slots:(Array.length c.wf_search.slot_rows)
      c.wf_privates
  in
  let acc = ref [] in
  run_search ?metrics c.wf_search ~commit ~uncommit ~on_world:(fun rows ->
      acc := R.create c.wf_schema rows :: !acc;
      true);
  List.rev !acc
