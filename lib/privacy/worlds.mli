(** Pruned possible-world enumeration.

    Semantic twin of {!Worlds_naive} (Definitions 1, 4 and 6) built on a
    backtracking slot search instead of generate-and-test: worlds are
    assignments of a candidate row (or absence) to each input slot, and
    the search materializes a node only when the partial assignment can
    still extend to a world — per-slot candidates are pre-filtered
    against the visible projection and fixed public functionality, view
    tuples are checked against their last producing slot, and per-module
    functional dependencies are maintained incrementally. Every leaf is
    a world, so [fold]/[exists]/[count] variants run without building
    world lists and stop early.

    A relation over a module schema satisfying [I -> O] is exactly a
    partial function from input assignments to output assignments, so
    standalone worlds are searched slot-by-slot over the input domain.
    Workflow worlds come in two flavours:

    - {e tuple-level} worlds ({!workflow_worlds_tuples}): partial
      functions from initial-input assignments to full tuples, filtered
      by the per-module functional dependencies and the view — the
      literal Definition 4/6 semantics.
    - {e function-family} worlds ({!workflow_worlds_functions}): every
      substitution of the private modules by arbitrary total functions
      whose induced provenance relation agrees with the view — exactly
      the worlds built in the proof of Lemma 1. When every public
      module is total these are searched as the relations with one row
      per initial input; with a partial public module the search falls
      back to {!Worlds_naive}.

    The property tests assert agreement with {!Worlds_naive} on random
    instances; the enumerators here preserve its result order.

    Every enumerator takes an optional [metrics] registry (default
    {!Svutil.Metrics.nop}) receiving [worlds.enumerated] (leaves
    visited, i.e. worlds actually produced before any early stop) and
    [worlds.pruned] (branches rejected before recursing). The
    {!Worlds_naive} fallback paths report nothing. *)

val default_max : int
(** Default [max_worlds] bound, [2_000_000]. *)

val pow_int : int -> int -> int
(** Overflow-checked power, saturating at [max_int] (see
    {!Worlds_naive.pow_int}). *)

(** {1 Standalone worlds (Definition 1)} *)

val standalone_worlds :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Wmodule.t ->
  visible:string list ->
  Rel.Relation.t list
(** All members of [Worlds(R, V)] for a standalone module (Definition 1).
    [max_worlds] (default 2_000_000) bounds the candidate count
    [(|Range|+1)^|Dom|]; @raise Invalid_argument beyond it. *)

val fold_standalone_worlds :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Wmodule.t ->
  visible:string list ->
  init:'a ->
  f:('a -> Rel.Relation.t -> 'a) ->
  'a
(** Fold over the worlds in enumeration order without building the
    list. *)

val exists_standalone_world :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Wmodule.t ->
  visible:string list ->
  f:(Rel.Relation.t -> bool) ->
  bool
(** Does some world satisfy [f]? Stops at the first witness. *)

val count_standalone_worlds :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Wmodule.t ->
  visible:string list ->
  int
(** Number of worlds, counted at the leaves of the search — no
    relations are built. *)

val standalone_out_set :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Wmodule.t ->
  visible:string list ->
  input:int array ->
  int array list
(** [OUT_{x,m}] (Definition 2): every output tuple [y] (in module output
    order) such that some world holds [(x, y)]. Each candidate [y] is
    decided by one existence search with the input's slot pinned. *)

(** {1 Workflow worlds (Definitions 4/5/6, Lemma 1)} *)

val workflow_worlds_functions :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Workflow.t ->
  public:string list ->
  visible:string list ->
  Rel.Relation.t list
(** Worlds of a workflow obtained by substituting every non-public
    module by an arbitrary total function of the same type and keeping
    the substitutions whose provenance relation matches the view on [V].
    [public] lists module names whose functionality is pinned
    (Definition 6: privatizing a public module removes it from this
    list). @raise Invalid_argument if the function space exceeds
    [max_worlds] (default 2_000_000). *)

val fold_workflow_worlds_functions :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Workflow.t ->
  public:string list ->
  visible:string list ->
  init:'a ->
  f:('a -> Rel.Relation.t -> 'a) ->
  'a
(** Fold over the function-family worlds without building the list.
    Visiting order is unspecified (use {!workflow_worlds_functions} for
    the sorted list). *)

val exists_workflow_world_functions :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Workflow.t ->
  public:string list ->
  visible:string list ->
  f:(Rel.Relation.t -> bool) ->
  bool
(** Does some function-family world satisfy [f]? Stops at the first
    witness; {!Wprivacy} uses this to find γ-witnesses and refutations
    without enumerating the full world set. *)

val workflow_out_set :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Workflow.t ->
  public:string list ->
  visible:string list ->
  module_name:string ->
  input:int array ->
  int array list
(** [OUT_{x,W}] (Definition 5): outputs the module can take on input [x]
    across the function-family worlds, in module output order. The
    definition is universally quantified, so a world in which [x] never
    occurs makes every output vacuously possible and the result is the
    module's whole range (see DESIGN.md). Stops as soon as the set
    saturates at the module's range. *)

val workflow_worlds_tuples :
  ?max_worlds:int ->
  ?metrics:Svutil.Metrics.t ->
  Wf.Workflow.t ->
  public:string list ->
  visible:string list ->
  Rel.Relation.t list
(** Literal Definition 4/6 enumeration: all relations over the workflow
    schema satisfying every module FD, fixed public functionality, and
    the view. Candidates are [(prod_noninitial |Delta| + 1)^(initial
    domain)]; @raise Invalid_argument beyond [max_worlds] (default
    2_000_000). *)
