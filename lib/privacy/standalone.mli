(** Standalone module privacy (Section 3).

    A module [m] is Gamma-standalone-private w.r.t. a visible attribute
    subset [V] if for every input [x] in [pi_I(R)], the possible worlds
    [Worlds(R, V)] admit at least Gamma distinct outputs for [x]
    (Definition 2).

    The checks here use the closed form justified by Lemma 2 and the
    FLIP construction (Appendix A.4):

    [y] is a possible output for [x] iff some row [t] of [R] agrees with
    [x] on the visible inputs and with [y] on the visible outputs.
    Therefore

    [|OUT_{x,m}| = d(x) * prod_{a in O \ V} |Delta_a|]

    where [d(x)] is the number of distinct visible-output projections
    among rows agreeing with [x] on visible inputs. {!Worlds} re-derives
    the same quantities by brute-force enumeration and the test suite
    checks they coincide. *)

val out_size : Wf.Wmodule.t -> visible:string list -> input:int array -> int
(** [|OUT_{x,m}|] for the given input tuple (over the module's input
    schema). @raise Invalid_argument if the input is not in [pi_I(R)]. *)

val min_out_size : Wf.Wmodule.t -> visible:string list -> int
(** Minimum of {!out_size} over all defined inputs — the privacy level
    that the view guarantees. *)

val max_achievable_gamma : Wf.Wmodule.t -> int
(** The largest standalone privacy level any view can guarantee for the
    module: [prod_{a in O} |Delta_a|], attained by hiding everything
    (and an upper bound for every other view by Proposition 1's
    monotonicity). O(|O|), no enumeration — the static feasibility
    pre-check of {!Analysis.Wfcheck} relies on it being cheap.
    Saturates at [max_int]. *)

val is_safe : Wf.Wmodule.t -> visible:string list -> gamma:int -> bool
(** Is [V] a safe subset for [m] and [Gamma]? (Definition 2.) *)

val is_hidden_safe : Wf.Wmodule.t -> hidden:string list -> gamma:int -> bool
(** Same check, parameterized by the hidden complement. *)

val safe_visible_subsets : Wf.Wmodule.t -> gamma:int -> string list list
(** All safe visible subsets [V], by exhaustive [2^k] search
    (Section 3.2's upper bound; [k] must be small). *)

val minimal_hidden_subsets : Wf.Wmodule.t -> gamma:int -> string list list
(** The minimal (w.r.t. inclusion) hidden subsets whose complements are
    safe — the antichain from which every safe view arises by
    Proposition 1. These are the per-module "requirement lists" of the
    workflow Secure-View problem. *)

val min_cost_hidden :
  ?prune:bool ->
  Wf.Wmodule.t ->
  gamma:int ->
  cost:(string -> Rat.t) ->
  (string list * Rat.t) option
(** Minimum-cost hidden subset (the standalone Secure-View problem).
    [None] if even hiding everything fails. With [prune] (default true)
    the search skips supersets of already-found safe hidden sets, the
    monotonicity shortcut justified by Proposition 1; [prune:false] is
    the naive Algorithm 2 loop, kept for the ablation benchmark.
    Costs must be non-negative. *)

val safe_check_calls : Wf.Wmodule.t -> gamma:int -> prune:bool -> int
(** Number of safety checks the {!min_cost_hidden} search performs —
    instrumentation for the E09 pruning ablation. *)

(** {1 Extensions (Section 6 of the paper)}

    The conclusion lists several directions this library implements:
    non-additive cost functions, the dual objective of maximizing the
    utility of visible data (see {!Core.Objective} for the workflow-level
    accounting), and handling very large attribute domains by
    sampling. *)

val min_cost_hidden_general :
  ?monotone:bool ->
  Wf.Wmodule.t ->
  gamma:int ->
  cost:(string list -> Rat.t) ->
  (string list * Rat.t) option
(** Standalone Secure-View under an arbitrary {e set} cost function
    ("some attribute subsets are more useful than others"). With
    [monotone] (default false) the search assumes
    [cost s <= cost s'] whenever [s] is a subset of [s'] and applies the
    Proposition 1 pruning; without it every subset is priced. *)

val max_gamma_under_budget :
  Wf.Wmodule.t ->
  cost:(string -> Rat.t) ->
  budget:Rat.t ->
  int * string list
(** The dual trade-off: the largest standalone privacy level attainable
    by hiding attributes of total (additive) cost at most [budget], with
    a witness hidden set. The level is [min_out_size], i.e. the largest
    [Gamma] for which some affordable view is safe. *)

val estimate_min_out_size :
  Svutil.Rng.t -> Wf.Wmodule.t -> visible:string list -> samples:int -> int
(** Upper bound on {!min_out_size} from a random sample of the module's
    defined inputs — the practical fallback when the input domain is too
    large to scan (Section 6's "very large domains"). Monotone in
    [samples]; equals the true minimum when [samples] covers all
    inputs. *)

val check_sampled :
  Svutil.Rng.t ->
  Wf.Wmodule.t ->
  visible:string list ->
  gamma:int ->
  samples:int ->
  [ `Unsafe | `Safe_on_sample ]
(** One-sided sampled safety check: [`Unsafe] is definitive (a witness
    input with fewer than [gamma] possible outputs was found);
    [`Safe_on_sample] only certifies the sampled inputs. *)
