type 'a t = ('a, unit) Hashtbl.t

let create n = Hashtbl.create n
let mem = Hashtbl.mem
let add t x = Hashtbl.replace t x ()

let add_new t x =
  if Hashtbl.mem t x then false
  else begin
    Hashtbl.replace t x ();
    true
  end

let remove = Hashtbl.remove
let cardinal = Hashtbl.length
let fold f t init = Hashtbl.fold (fun x () acc -> f x acc) t init
let iter f t = Hashtbl.iter (fun x () -> f x) t
let elements t = fold (fun x acc -> x :: acc) t []

let of_list l =
  let t = create (List.length l) in
  List.iter (add t) l;
  t
