(* Bounded LRU map: a hash table over an intrusive doubly-linked list
   in recency order. All operations are O(1); [find] promotes its hit
   to most-recently-used, and [add] beyond capacity evicts from the
   cold end. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable evictions : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evictions <- t.evictions + 1

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- value;
      promote t n
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table key

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head
