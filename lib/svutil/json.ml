(* A minimal generic JSON reader/writer for the serve protocol. The
   Metrics module keeps its own specialized parser (it decodes straight
   into a registry); this one builds a value tree for callers that need
   to inspect arbitrary request objects. Numbers are kept as floats —
   protocol fields are small integers and millisecond budgets, both of
   which floats represent exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = parse_error "%s at offset %d" msg !pos in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= len then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !pos + 4 >= len then fail "bad unicode escape";
                let code =
                  (hex s.[!pos + 1] lsl 12)
                  lor (hex s.[!pos + 2] lsl 8)
                  lor (hex s.[!pos + 3] lsl 4)
                  lor hex s.[!pos + 4]
                in
                pos := !pos + 4;
                (* UTF-8 encode the BMP code point; protocol strings are
                   identifiers and workflow text, so this path is rare. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail "unsupported escape");
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        while
          !pos < len
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          advance ()
        done;
        (match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Num f
        | None -> fail "malformed number")
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    (* JSON has no non-finite numbers; "inf"/"nan" would not re-parse.
       Serialize them as null (like browsers' JSON.stringify) so
       [to_string] always emits valid JSON. *)
    "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips exactly. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> number_to_string f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"

(* Accessors: [None] on a missing key or a kind mismatch. *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e9 ->
      Some (int_of_float f)
  | _ -> None

let str_member key j = Option.bind (member key j) to_str
let bool_member key j = Option.bind (member key j) to_bool
let float_member key j = Option.bind (member key j) to_float
let int_member key j = Option.bind (member key j) to_int
