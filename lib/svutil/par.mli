(** Parallel map over a small worker pool.

    On OCaml >= 5 this is implemented with [Domain]s (see
    [par_domains.ml]); on 4.x the build selects a sequential fallback
    ([par_seq.ml]) with the same interface, so callers never need a
    version test. Work is assigned by striding: item [i] goes to worker
    [i mod jobs], and each item is evaluated exactly once, so closures
    over per-worker mutable state are safe as long as the state is
    indexed by item (not shared across items).

    Exceptions raised by [f] are re-raised in the caller after all
    workers have joined. *)

val available : bool
(** [true] iff real parallelism (Domains) is compiled in. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [SV_JOBS] environment
    variable if set to a positive integer, otherwise the runtime's
    recommended domain count (always [1] in the sequential fallback). *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map. [jobs <= 1] runs sequentially in the
    calling domain. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
