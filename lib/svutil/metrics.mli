(** Lightweight metrics registry: named counters, histograms, and
    nested timing spans.

    A registry is either {e live} (created by {!create}) or the shared
    {e nop} sink {!nop}.  Every operation on {!nop} is a constant-time
    no-op — no clock reads, no hash lookups, no allocation — so
    instrumented code can thread a registry unconditionally and pay
    nothing when metrics are disabled (the default everywhere).

    Counters and histograms are looked up once and then updated through
    handles, keeping hot loops free of string hashing.  The recommended
    pattern for very hot loops is to accumulate into a local [int ref]
    and flush once per call with {!count}.

    A registry is {b not} thread-safe.  Parallel code ({!Par}) must give
    each worker its own registry and combine them afterwards with
    {!merge} or {!absorb}; merging is associative and commutative with
    the empty registry as identity.

    Naming scheme (see DESIGN.md §10): counters are
    [<layer>.<quantity>] (e.g. [simplex.pivots], [ilp.nodes],
    [worlds.enumerated]); span paths are slash-joined nesting chains
    (e.g. [solve/lp]).  Names must not contain ["/"] except as the span
    nesting separator, and must not contain ["\""] or ["\\"]. *)

type t
(** A metrics registry (live or nop). *)

val nop : t
(** The shared disabled registry.  All updates are dropped; queries
    report an empty registry. *)

val create : unit -> t
(** A fresh live, empty registry. *)

val enabled : t -> bool
(** [true] exactly for live registries. *)

(** {1 Counters} *)

type counter
(** A handle to a named monotone integer counter. *)

val counter : t -> string -> counter
(** [counter t name] is the handle for [name], created at 0 on first
    use.  On {!nop} this returns a shared dummy handle. *)

val incr : counter -> unit
(** Add 1 (no-op on a dummy handle). *)

val add : counter -> int -> unit
(** Add [n] (no-op on a dummy handle). *)

val tick : t -> string -> unit
(** [tick t name] is [add (counter t name) 1] — convenience for cold
    call sites. *)

val count : t -> string -> int -> unit
(** [count t name n] is [add (counter t name) n]. *)

val counter_value : t -> string -> int
(** Current value, 0 when absent (always 0 on {!nop}). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Histograms} *)

type histogram
(** A handle to a named summary histogram (count/sum/min/max — no
    buckets, so merging loses no information). *)

type histo_stats = { hcount : int; hsum : float; hmin : float; hmax : float }

val histogram : t -> string -> histogram
(** Handle for a named histogram, empty on first use. *)

val observe : histogram -> float -> unit
(** Record one observation (no-op on a dummy handle). *)

val observe_in : t -> string -> float -> unit
(** [observe_in t name x] is [observe (histogram t name) x]. *)

val histo_stats : t -> string -> histo_stats option
(** Summary of a histogram, [None] when absent or never observed. *)

val histograms : t -> (string * histo_stats) list
(** All non-empty histograms, sorted by name. *)

(** {1 Spans} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t label f] runs [f ()] inside a timing span.  On a live
    registry the elapsed wall-clock time is recorded under the
    slash-joined path of enclosing span labels (exception-safe: the
    span is closed and recorded even if [f] raises).  On {!nop} this is
    exactly [f ()] — no clock read. *)

val timed : t -> string -> (unit -> 'a) -> 'a * float
(** Like {!span} but always measures, returning [(f (), elapsed_ms)]
    even on {!nop} (where nothing is recorded).  This lets callers keep
    a single clock-read pair as the source for both their own timing
    report and the registry. *)

val record_span : t -> string -> float -> unit
(** [record_span t path ms] records one completed span sample directly
    under [path].  Used for replaying merged data and by tests; prefer
    {!span} in instrumented code. *)

val span_stats : t -> string -> (int * float) option
(** [(count, total_ms)] for a span path, [None] when absent. *)

val spans : t -> (string * (int * float)) list
(** All spans as [(path, (count, total_ms))], sorted by path. *)

(** {1 Combining} *)

val absorb : t -> t -> unit
(** [absorb dst src] adds every counter, histogram, and span of [src]
    into [dst] in place.  No-op when [dst] is {!nop}; a {!nop} [src]
    contributes nothing. *)

val merge : t -> t -> t
(** [merge a b] is a fresh registry holding the pointwise combination:
    counters and span stats sum, histogram summaries combine.
    Associative and commutative; the empty registry is an identity (up
    to {!equal}).  Returns {!nop} when both arguments are nop. *)

val equal : t -> t -> bool
(** Structural equality of contents (counters, histograms, spans);
    ignores whether the registries are live. *)

val is_empty : t -> bool
(** [true] when the registry records nothing. *)

(** {1 JSON} *)

val to_json : t -> string
(** One-line JSON object
    [{"counters":{...},"histograms":{...},"spans":{...}}] with keys
    sorted; floats are printed with enough digits to round-trip
    exactly. *)

val of_json : string -> (t, string) result
(** Parse the output of {!to_json} back into a live registry.
    [of_json (to_json t)] is {!equal} to [t]. *)
