(** A minimal generic JSON tree: parser, printer, and accessors.

    Built for the serve protocol ({!Serve.Request} lines and
    {!Serve.Response} objects), where request fields are identifiers,
    workflow text, small integers and millisecond budgets — all exactly
    representable with [float] numbers.  {!Metrics.of_json} keeps its
    own specialized parser (it decodes straight into a registry without
    building a tree); everything else should use this module instead of
    growing another hand-rolled reader. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse of string
(** Raised internally; {!of_string} never lets it escape. *)

val of_string : string -> (t, string) result
(** Parse one JSON document.  Trailing non-whitespace is an error. *)

val to_string : t -> string
(** One-line serialization.  [of_string (to_string j)] re-reads [j]
    exactly for every tree this library builds (numbers are printed with
    round-trip precision); the one exception is a non-finite [Num],
    which JSON cannot represent and which serializes as [null]. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val number_to_string : float -> string
(** Integral floats print without a fraction; everything else with
    enough digits to round-trip bit-exactly (including negative
    exponents like [1e-07]). Non-finite floats print as ["null"]. *)

(** {1 Accessors}

    All return [None] on a missing key or kind mismatch — protocol code
    threads them with [Option.bind] and reports one aggregate error. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_bool : t -> bool option
val to_float : t -> float option

val to_int : t -> int option
(** Integral numbers with magnitude at most [1e9]; [None] otherwise. *)

val str_member : string -> t -> string option
val bool_member : string -> t -> bool option
val float_member : string -> t -> float option
val int_member : string -> t -> int option
