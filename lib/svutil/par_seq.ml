(* Sequential fallback, selected by dune on OCaml 4.x where Domains are
   unavailable. Kept signature-identical with par_domains.ml; see
   par.mli. *)

let available = false
let default_jobs () = 1
let map_array ?jobs:_ f xs = Array.map f xs
let map ?jobs:_ f l = List.map f l
