(** Mutable binary min-heap priority queue.

    Ordering is supplied at creation time; [pop] returns the smallest
    element under that ordering. Used by the best-first branch-and-bound
    loop in the LP layer, where elements are open nodes keyed by their
    parent LP bound. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit
