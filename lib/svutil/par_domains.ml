(* Domain-based implementation, selected by dune on OCaml >= 5.
   Kept signature-identical with par_seq.ml; see par.mli. *)

let available = true

let default_jobs () =
  match Sys.getenv_opt "SV_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map_array ?jobs f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let err = Atomic.make None in
    (* Worker [k] evaluates items k, k+jobs, k+2*jobs, ... — each slot of
       [results] is written by exactly one domain, and [Domain.join]
       orders those writes before the reads below. *)
    let worker k () =
      try
        let i = ref k in
        while !i < n do
          results.(!i) <- Some (f xs.(!i));
          i := !i + jobs
        done
      with e -> ignore (Atomic.compare_and_set err None (Some e))
    in
    let domains = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    Array.iter Domain.join domains;
    (match Atomic.get err with Some e -> raise e | None -> ());
    Array.map
      (function Some y -> y | None -> invalid_arg "Par.map_array: missing result")
      results
  end

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
