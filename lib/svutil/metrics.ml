(* Metrics registry: counters, summary histograms, nested spans.

   Live registries keep three small hashtables keyed by name.  Handles
   returned by [counter]/[histogram] point at mutable cells so repeated
   updates skip the string hash.  The nop registry shares a pair of
   dummy handles whose [live] flag short-circuits every update; callers
   can therefore thread a registry unconditionally. *)

type counter = { mutable c : int; c_live : bool }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  h_live : bool;
}

type span_cell = { mutable s_count : int; mutable s_ms : float }

type t = {
  live : bool;
  cs : (string, counter) Hashtbl.t;
  hs : (string, histogram) Hashtbl.t;
  ss : (string, span_cell) Hashtbl.t;
  mutable stack : string list; (* enclosing span labels, innermost first *)
}

let dummy_counter = { c = 0; c_live = false }

let dummy_histogram =
  { n = 0; sum = 0.; mn = infinity; mx = neg_infinity; h_live = false }

let nop =
  {
    live = false;
    cs = Hashtbl.create 1;
    hs = Hashtbl.create 1;
    ss = Hashtbl.create 1;
    stack = [];
  }

let create () =
  {
    live = true;
    cs = Hashtbl.create 16;
    hs = Hashtbl.create 8;
    ss = Hashtbl.create 8;
    stack = [];
  }

let enabled t = t.live

(* Counters *)

let counter t name =
  if not t.live then dummy_counter
  else
    match Hashtbl.find_opt t.cs name with
    | Some c -> c
    | None ->
        let c = { c = 0; c_live = true } in
        Hashtbl.add t.cs name c;
        c

let incr c = if c.c_live then c.c <- c.c + 1
let add c n = if c.c_live then c.c <- c.c + n
let tick t name = if t.live then incr (counter t name)
let count t name n = if t.live then add (counter t name) n

let counter_value t name =
  match Hashtbl.find_opt t.cs name with Some c -> c.c | None -> 0

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.cs (fun c -> c.c)

(* Histograms *)

type histo_stats = { hcount : int; hsum : float; hmin : float; hmax : float }

let histogram t name =
  if not t.live then dummy_histogram
  else
    match Hashtbl.find_opt t.hs name with
    | Some h -> h
    | None ->
        let h = { n = 0; sum = 0.; mn = infinity; mx = neg_infinity; h_live = true } in
        Hashtbl.add t.hs name h;
        h

let observe h x =
  if h.h_live then begin
    h.n <- h.n + 1;
    h.sum <- h.sum +. x;
    if x < h.mn then h.mn <- x;
    if x > h.mx then h.mx <- x
  end

let observe_in t name x = if t.live then observe (histogram t name) x

let stats_of_histogram h =
  { hcount = h.n; hsum = h.sum; hmin = h.mn; hmax = h.mx }

let histo_stats t name =
  match Hashtbl.find_opt t.hs name with
  | Some h when h.n > 0 -> Some (stats_of_histogram h)
  | _ -> None

let histograms t =
  Hashtbl.fold
    (fun k h acc -> if h.n > 0 then (k, stats_of_histogram h) :: acc else acc)
    t.hs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Spans *)

let span_cell t path =
  match Hashtbl.find_opt t.ss path with
  | Some s -> s
  | None ->
      let s = { s_count = 0; s_ms = 0. } in
      Hashtbl.add t.ss path s;
      s

let record_span t path ms =
  if t.live then begin
    let s = span_cell t path in
    s.s_count <- s.s_count + 1;
    s.s_ms <- s.s_ms +. ms
  end

let current_path t label =
  match t.stack with
  | [] -> label
  | stack -> String.concat "/" (List.rev (label :: stack))

let pop_stack t =
  match t.stack with [] -> () | _ :: tl -> t.stack <- tl

let timed t label f =
  if not t.live then begin
    let t0 = Deadline.now_ms () in
    let r = f () in
    (r, Deadline.now_ms () -. t0)
  end
  else begin
    let path = current_path t label in
    let t0 = Deadline.now_ms () in
    t.stack <- label :: t.stack;
    match f () with
    | r ->
        let ms = Deadline.now_ms () -. t0 in
        pop_stack t;
        record_span t path ms;
        (r, ms)
    | exception e ->
        let ms = Deadline.now_ms () -. t0 in
        pop_stack t;
        record_span t path ms;
        raise e
  end

let span t label f = if not t.live then f () else fst (timed t label f)

let span_stats t path =
  match Hashtbl.find_opt t.ss path with
  | Some s -> Some (s.s_count, s.s_ms)
  | None -> None

let spans t = sorted_bindings t.ss (fun s -> (s.s_count, s.s_ms))

(* Combining *)

let absorb dst src =
  if dst.live then begin
    Hashtbl.iter (fun name c -> count dst name c.c) src.cs;
    Hashtbl.iter
      (fun name h ->
        if h.n > 0 then begin
          let d = histogram dst name in
          d.n <- d.n + h.n;
          d.sum <- d.sum +. h.sum;
          if h.mn < d.mn then d.mn <- h.mn;
          if h.mx > d.mx then d.mx <- h.mx
        end)
      src.hs;
    Hashtbl.iter
      (fun path s ->
        let d = span_cell dst path in
        d.s_count <- d.s_count + s.s_count;
        d.s_ms <- d.s_ms +. s.s_ms)
      src.ss
  end

let merge a b =
  if (not a.live) && not b.live then nop
  else begin
    let t = create () in
    absorb t a;
    absorb t b;
    t
  end

let equal a b =
  let heq (x : histo_stats) (y : histo_stats) =
    x.hcount = y.hcount && x.hsum = y.hsum && x.hmin = y.hmin && x.hmax = y.hmax
  in
  counters a = counters b
  && List.equal
       (fun (ka, va) (kb, vb) -> ka = kb && heq va vb)
       (histograms a) (histograms b)
  && spans a = spans b

let is_empty t =
  counters t = [] && histograms t = [] && spans t = []

(* JSON *)

let buf_add_escaped b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_float x =
  (* shortest representation that round-trips exactly *)
  let s = Printf.sprintf "%.17g" x in
  let shorter = Printf.sprintf "%.12g" x in
  if float_of_string shorter = x then shorter else s

let to_json t =
  let b = Buffer.create 256 in
  let key k =
    Buffer.add_char b '"';
    buf_add_escaped b k;
    Buffer.add_string b "\":"
  in
  let obj name entries emit =
    key name;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        key k;
        emit v)
      entries;
    Buffer.add_char b '}'
  in
  Buffer.add_char b '{';
  obj "counters" (counters t) (fun v -> Buffer.add_string b (string_of_int v));
  Buffer.add_char b ',';
  obj "histograms" (histograms t) (fun (h : histo_stats) ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
           h.hcount (json_float h.hsum) (json_float h.hmin)
           (json_float h.hmax)));
  Buffer.add_char b ',';
  obj "spans" (spans t) (fun (n, ms) ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"total_ms\":%s}" n (json_float ms)));
  Buffer.add_char b '}';
  Buffer.contents b

(* Minimal recursive-descent parser for the subset of JSON that
   [to_json] emits: objects, strings, and numbers. *)

exception Parse of string

type jv = Obj of (string * jv) list | Num of float | Str of string

let of_json s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'u' ->
                   if !pos + 4 >= len then fail "bad \\u escape"
                   else begin
                     let hex = String.sub s (!pos + 1) 4 in
                     (match int_of_string_opt ("0x" ^ hex) with
                     | Some code when code < 0x80 ->
                         Buffer.add_char b (Char.chr code)
                     | _ -> fail "unsupported \\u escape");
                     pos := !pos + 4
                   end
               | _ -> fail "unsupported escape");
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            let k = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '"' -> Str (parse_string ())
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | exception Parse msg -> Error msg
  | v -> (
      let t = create () in
      let field name o =
        match List.assoc_opt name o with
        | Some v -> v
        | None -> raise (Parse (name ^ " missing"))
      in
      let as_obj = function Obj o -> o | _ -> raise (Parse "expected object") in
      let as_num = function Num f -> f | _ -> raise (Parse "expected number") in
      let as_int v =
        let f = as_num v in
        let i = int_of_float f in
        if float_of_int i <> f then raise (Parse "expected integer") else i
      in
      match v with
      | Obj top -> (
          try
            List.iter
              (fun (name, v) -> count t name (as_int v))
              (as_obj (field "counters" top));
            List.iter
              (fun (name, v) ->
                let o = as_obj v in
                let h = histogram t name in
                h.n <- as_int (field "count" o);
                h.sum <- as_num (field "sum" o);
                h.mn <- as_num (field "min" o);
                h.mx <- as_num (field "max" o))
              (as_obj (field "histograms" top));
            List.iter
              (fun (path, v) ->
                let o = as_obj v in
                let cell = span_cell t path in
                cell.s_count <- as_int (field "count" o);
                cell.s_ms <- as_num (field "total_ms" o))
              (as_obj (field "spans" top));
            Ok t
          with Parse msg -> Error msg)
      | _ -> Error "top-level value is not an object")
