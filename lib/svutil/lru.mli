(** A bounded least-recently-used map with string keys.

    All operations are O(1).  {!find} counts as a use (the hit is
    promoted to most-recently-used); {!add} beyond {!capacity} evicts
    the least-recently-used entry and counts it in {!evictions}.  The
    serve layer's canonical-form solution cache ({!Serve.Cache}) is the
    primary client.

    Not thread-safe; the single-threaded serve loop owns its cache. *)

type 'a t

val create : int -> 'a t
(** [create capacity] is an empty cache holding at most [capacity]
    entries.  @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val evictions : 'a t -> int
(** Entries dropped by capacity pressure since {!create} (replacing a
    key with {!add} is not an eviction). *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most-recently-used entry. *)

val mem : 'a t -> string -> bool
(** Membership test without promoting. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace, making the entry most-recently-used.  A fresh
    insert at capacity first evicts the least-recently-used entry. *)

val remove : 'a t -> string -> unit

val to_list : 'a t -> (string * 'a) list
(** Entries most-recently-used first (for tests and dumps). *)
