(** Admission-control slot counter for the serve loop's [--jobs]
    budget.

    Not a blocking semaphore: the serve loop handles one request at a
    time, so a grant {e clamps} the request's parallelism to what is
    available instead of waiting.  {!acquire} always grants at least one
    slot (admission control narrows parallelism, it never refuses a
    request), so {!in_use} can transiently exceed {!capacity} by that
    minimum grant when the pool is exhausted.  Not thread-safe. *)

type t

val create : int -> t
(** @raise Invalid_argument when the capacity is below 1. *)

val capacity : t -> int
val in_use : t -> int

val available : t -> int
(** [max 0 (capacity - in_use)]. *)

val try_acquire : t -> int -> int
(** [try_acquire t n] grants [min n (available t)] slots (possibly 0)
    and records them as in use. *)

val acquire : t -> int -> int
(** Like {!try_acquire} but always grants at least one slot. *)

val release : t -> int -> unit
(** Return granted slots.  Releasing more than is in use clamps at 0. *)

val with_slots : t -> int -> (int -> 'a) -> 'a
(** [with_slots t n f] acquires, runs [f granted], and releases the
    same grant on the way out (also on exceptions). *)
