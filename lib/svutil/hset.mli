(** Imperative hashed sets.

    The privacy enumerators accumulate large sets of tuples (possible
    outputs, view keys, seen worlds); list accumulation with
    [List.exists] membership is O(n^2). This is the O(1)-amortized
    replacement: a thin set facade over [Hashtbl] for any hashable
    structural key. *)

type 'a t

val create : int -> 'a t
(** [create n] makes an empty set with initial capacity [n]. *)

val mem : 'a t -> 'a -> bool
val add : 'a t -> 'a -> unit

val add_new : 'a t -> 'a -> bool
(** [add_new t x] inserts [x] and reports whether it was absent —
    a combined membership test and insertion. *)

val remove : 'a t -> 'a -> unit
val cardinal : 'a t -> int
val fold : ('a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val iter : ('a -> unit) -> 'a t -> unit

val elements : 'a t -> 'a list
(** The members, in unspecified order. *)

val of_list : 'a list -> 'a t
