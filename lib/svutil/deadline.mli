(** Wall-clock time budgets for the solver stack.

    A deadline is an absolute point on the monotonic solver clock
    ({!now_ms}); {!none} never expires. Deadlines are plain immutable
    values, safe to share across {!Par} worker domains.

    Hot loops poll with {!check}, which raises {!Expired} — the
    branch-and-bound driver ({!Lp.Ilp}) polls at every node pop and the
    simplex kernels every few dozen pivots, so a deadline hit surfaces
    within a bounded amount of work and the caller returns its best
    incumbent instead of running away. *)

type t

exception Expired
(** Raised by {!check}; callers catch it at the level that holds an
    incumbent to return. *)

val none : t
(** The deadline that never expires (all checks are free of clock
    reads). *)

val after_ms : float -> t
(** [after_ms budget] expires [budget] milliseconds from now. A
    non-positive budget is already expired. *)

val of_ms_opt : float option -> t
(** [of_ms_opt (Some b) = after_ms b]; [of_ms_opt None = none]. *)

val is_none : t -> bool

val expired : t -> bool

val check : t -> unit
(** @raise Expired once the deadline has passed. *)

val remaining_ms : t -> float option
(** Milliseconds left, clamped at [0.]; [None] for {!none}. *)

val now_ms : unit -> float
(** The solver clock, in milliseconds. Monotonic where the platform
    provides it ([Unix.gettimeofday] otherwise — adjustments are
    harmless at the tens-of-milliseconds budgets used here). *)
