(* Absolute expiry time in clock milliseconds; [infinity] never
   expires, so [none] checks are a float compare with no clock read. *)
type t = float

exception Expired

let now_ms () = Unix.gettimeofday () *. 1000.
let none = infinity
let is_none t = t = infinity
let after_ms budget = now_ms () +. budget
let of_ms_opt = function None -> none | Some b -> after_ms b
let expired t = t < infinity && now_ms () >= t
let check t = if expired t then raise Expired

let remaining_ms t =
  if t = infinity then None else Some (Float.max 0. (t -. now_ms ()))
