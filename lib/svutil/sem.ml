(* Admission-control slot counter. The serve loop is single-threaded
   (one request at a time), so this is deliberately not a blocking
   semaphore: a grant clamps the request to what is available rather
   than waiting, and the solver layers (Par worker pools) honour the
   granted width. Every request is granted at least one slot —
   admission control narrows parallelism, it never refuses outright —
   so [in_use] can transiently exceed [capacity] by that minimum grant
   when the pool is exhausted. *)

type t = { capacity : int; mutable in_use : int }

let create capacity =
  if capacity < 1 then invalid_arg "Sem.create: capacity must be >= 1";
  { capacity; in_use = 0 }

let capacity t = t.capacity
let in_use t = t.in_use
let available t = max 0 (t.capacity - t.in_use)

let try_acquire t n =
  if n < 0 then invalid_arg "Sem.try_acquire: negative request";
  let granted = min n (available t) in
  t.in_use <- t.in_use + granted;
  granted

let acquire t n =
  let granted = max 1 (min (max 1 n) (available t)) in
  t.in_use <- t.in_use + granted;
  granted

let release t n =
  if n < 0 then invalid_arg "Sem.release: negative count";
  t.in_use <- max 0 (t.in_use - n)

let with_slots t n f =
  let granted = acquire t n in
  Fun.protect ~finally:(fun () -> release t granted) (fun () -> f granted)
