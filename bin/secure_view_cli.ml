(* Command-line interface to the Secure-View library.

   secure_view_cli show FILE            print the workflow and its relation
   secure_view_cli lint FILE            static diagnostics (Wfcheck)
   secure_view_cli analyze FILE MODULE  standalone privacy analysis
   secure_view_cli solve FILE           solve the workflow Secure-View problem
   secure_view_cli batch FILES...       solve many files, one JSON line each
   secure_view_cli check FILE --hide... validate a proposed view
   secure_view_cli flow FILE            static privacy-flow analysis
   secure_view_cli delta FILE --edits S incremental re-solve under an edit script
   secure_view_cli corpus               generate + measure the seeded scenario corpus
   secure_view_cli tune ROWS            fit a routing table from corpus rows

   All solving goes through Core.Engine: one request/result shape per
   method, deadlines, and the auto portfolio.

   FILE uses the format documented in Wf.Parse. *)

open Cmdliner
module Wfcheck = Analysis.Wfcheck

(* [analyze]/[solve]/[check] pre-flight the spec so infeasible or
   malformed inputs fail fast with a coded diagnostic instead of dying
   somewhere inside the exponential searches. Loading, diagnostics and
   the exit-code mapping (2 = malformed input, 1 = well-formed input
   failing its checks) live in Serve.Request, shared with the daemon. *)
let fail_with (e : Serve.Request.error) =
  (match e with
  | Serve.Request.Static_errors _ -> prerr_endline (Serve.Request.text e)
  | _ -> Printf.eprintf "error: %s\n" (Serve.Request.text e));
  exit (Serve.Request.exit_code e)

let load ?(preflight = false) path =
  match Serve.Request.spec_of_file ~preflight path with
  | Ok spec -> spec
  | Error e -> fail_with e

let read_all path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error m -> fail_with (Serve.Request.Parse_error m)

let write_all path text =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc text;
      Out_channel.output_char oc '\n')

(* Numeric option values arrive as strings and are parsed by hand so a
   malformed value exits 2 (Serve.Request.Usage) like every other bad
   input, instead of cmdliner's 124. *)
let parse_int ~what s =
  match int_of_string_opt s with
  | Some n -> n
  | None ->
      fail_with
        (Serve.Request.Usage
           (Printf.sprintf "%s must be an integer, got %S" what s))

let parse_float ~what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> f
  | _ ->
      fail_with
        (Serve.Request.Usage
           (Printf.sprintf "%s must be a finite number, got %S" what s))

let load_routing path =
  match Svutil.Json.of_string (read_all path) with
  | Error m -> fail_with (Serve.Request.Parse_error (path ^ ": " ^ m))
  | Ok j -> (
      match Core.Engine.routing_of_json j with
      | Ok t -> t
      | Error m -> fail_with (Serve.Request.Parse_error (path ^ ": " ^ m)))

let gamma_of (spec : Wf.Parse.spec) name =
  Option.value ~default:spec.Wf.Parse.gamma
    (List.assoc_opt name spec.Wf.Parse.gamma_overrides)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Workflow description file.")

(* show ---------------------------------------------------------------- *)

let show_cmd =
  let run file =
    let spec = load file in
    let w = spec.Wf.Parse.workflow in
    Printf.printf "modules: %s\n" (String.concat " -> " (Wf.Workflow.module_names w));
    Printf.printf "initial inputs: %s\n" (String.concat ", " (Wf.Workflow.initial_names w));
    Printf.printf "final outputs: %s\n" (String.concat ", " (Wf.Workflow.final_names w));
    Printf.printf "data sharing degree gamma = %d\n\n"
      (Wf.Workflow.data_sharing_degree w);
    Svutil.Table.print (Rel.Relation.to_table (Wf.Workflow.relation w))
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the workflow structure and its provenance relation.")
    Term.(const run $ file_arg)

(* lint ----------------------------------------------------------------- *)

let lint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on warnings too, not just errors.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ] ~doc:"Print the diagnostic code reference and exit.")
  in
  let file_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Workflow description file.")
  in
  let run file json strict codes =
    if codes then begin
      List.iter
        (fun (code, sev, meaning, hint) ->
          Printf.printf "%s  %-7s  %s\n           fix: %s\n" code
            (Wfcheck.severity_to_string sev) meaning hint)
        Wfcheck.code_reference;
      exit 0
    end;
    let file =
      match file with
      | Some f -> f
      | None ->
          prerr_endline "error: lint needs a FILE (or --codes)";
          exit 2
    in
    match Wf.Parse.parse_raw_file file with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
    | Ok raw ->
        let ds = Wfcheck.check_raw raw in
        if json then print_endline (Wfcheck.to_json ds)
        else if ds = [] then Printf.printf "%s: no diagnostics\n" file
        else print_endline (Wfcheck.to_text ~file ds);
        let failing =
          List.exists
            (fun (d : Wfcheck.diagnostic) ->
              match d.Wfcheck.severity with
              | Wfcheck.Error -> true
              | Wfcheck.Warning -> strict
              | Wfcheck.Info -> false)
            ds
        in
        exit (if failing then 1 else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the Wfcheck static diagnostics over a workflow spec.")
    Term.(const run $ file_opt $ json_arg $ strict_arg $ codes_arg)

(* analyze -------------------------------------------------------------- *)

let analyze_cmd =
  let module_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"MODULE" ~doc:"Module to analyze.")
  in
  let run file name =
    let spec = load ~preflight:true file in
    match Wf.Workflow.find_module spec.Wf.Parse.workflow name with
    | None ->
        fail_with (Serve.Request.Unknown_name (Printf.sprintf "no module %s" name))
    | Some m ->
        let gamma = gamma_of spec name in
        Printf.printf "standalone analysis of %s for Gamma = %d\n" name gamma;
        let minimal = Privacy.Standalone.minimal_hidden_subsets m ~gamma in
        Printf.printf "minimal safe hidden sets: %s\n"
          (if minimal = [] then "(none - the requirement is unachievable)"
           else String.concat " " (List.map (fun h -> "{" ^ String.concat "," h ^ "}") minimal));
        let cost a = List.assoc a spec.Wf.Parse.costs in
        (match Privacy.Standalone.min_cost_hidden m ~gamma ~cost with
        | Some (hidden, c) ->
            Printf.printf "cheapest safe hidden set: {%s} at cost %s\n"
              (String.concat "," hidden) (Rat.to_string c)
        | None -> print_endline "no safe subset exists");
        Format.printf "derived requirement: %a@." Core.Requirement.pp
          (Core.Derive.requirement m ~gamma)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Standalone privacy analysis of one module.")
    Term.(const run $ file_arg $ module_arg)

(* solve ----------------------------------------------------------------- *)

(* Method selection is shared between [solve], [batch] and the daemon
   protocol; the spellings live in Serve.Request ([lp] is the set-LP
   threshold rounding, [alg1] the cardinality-LP randomized rounding). *)
let concrete_methods = Serve.Request.method_names

let method_doc =
  "Solver: $(b,auto) (portfolio), $(b,greedy), $(b,lp) (set-LP threshold \
   rounding), $(b,alg1) (cardinality-LP randomized rounding), $(b,exact) \
   (branch and bound), $(b,brute) (exhaustive), or $(b,all) \
   (greedy + lp + exact)."

let method_arg =
  let methods =
    Arg.enum (("all", `All) :: List.map (fun (n, m) -> (n, `One (n, m))) concrete_methods)
  in
  Arg.(value & opt methods `All
       & info [ "m"; "method" ] ~docv:"METHOD" ~doc:method_doc)

let batch_method_arg =
  let methods = Arg.enum (List.map (fun (n, m) -> (n, (n, m))) concrete_methods) in
  Arg.(value & opt methods ("auto", Core.Engine.Auto)
       & info [ "m"; "method" ] ~docv:"METHOD"
           ~doc:"Solver: auto (portfolio, default), greedy, lp, alg1, exact, or brute.")

let seed_arg =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N"
           ~doc:"RNG seed for the randomized rounding trials (alg1). Equal \
                 seeds reproduce equal solutions; batch derives one seed per \
                 file from this base.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"MS"
           ~doc:"Wall-clock budget in milliseconds. A run that hits it \
                 returns the best incumbent found so far, never claiming \
                 optimality.")

let trials_arg =
  Arg.(value & opt int 4
       & info [ "trials" ] ~docv:"N"
           ~doc:"Randomized rounding trials (alg1); the cheapest wins.")

let instance_of = Serve.Request.instance_of

let emit_view_arg =
  Arg.(value & flag & info [ "emit-view" ]
         ~doc:"Also print the published view relation pi_V(R) and the module renaming.")

let node_limit_arg =
  Arg.(value & opt int Lp.Ilp.default_node_limit
       & info [ "node-limit" ] ~docv:"N"
           ~doc:"Branch-and-bound node budget for the exact solver.")

let lp_mode_arg =
  let modes =
    Arg.enum
      [
        ("exact", Lp.Simplex.Exact_mode);
        ("hybrid", Lp.Simplex.Hybrid_mode);
        ("float", Lp.Simplex.Float_mode);
        ("fast", Lp.Simplex.Float_mode);
      ]
  in
  Arg.(value & opt modes Lp.Simplex.Hybrid_mode
       & info [ "lp-mode"; "solver" ] ~docv:"MODE"
           ~doc:"Simplex route for the LP relaxations: $(b,exact) (rational \
                 pivoting, the reference), $(b,hybrid) (default: float basis \
                 hunting, exactly certified — same answers as exact), or \
                 $(b,float) (approximate; results are tagged lp.inexact). \
                 $(b,fast) is accepted as a legacy spelling of $(b,float).")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Evaluate up to N branch-and-bound nodes concurrently (OCaml 5 \
                 domains; sequential fallback on 4.x). The answer does not \
                 depend on N.")

let solve_json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit results as JSON, including branch-and-bound search \
                 statistics for the exact method.")

let metrics_arg =
  let modes = Arg.enum [ ("none", `None); ("json", `Json) ] in
  Arg.(value & opt modes `None
       & info [ "metrics" ] ~docv:"FMT"
           ~doc:"Collect solver-stack work counters (simplex pivots, \
                 branch-and-bound nodes, rounding trials) and phase spans. \
                 $(b,json) emits them as a JSON object per solve; \
                 $(b,none) (default) collects nothing and costs nothing.")

let metrics_of = function
  | `None -> Svutil.Metrics.nop
  | `Json -> Svutil.Metrics.create ()

(* JSON emission is shared with the daemon in Serve.Response; these
   aliases keep the subcommand bodies readable. *)
let json_str = Serve.Response.str
let json_list = Serve.Response.list
let json_assoc = Serve.Response.assoc
let json_engine_result = Serve.Response.engine_result ~timings:true

let stat_true (r : Core.Engine.result) key =
  List.assoc_opt key r.Core.Engine.stats = Some "true"

let no_static_fixing_arg =
  Arg.(value & flag
       & info [ "no-static-fixing" ]
           ~doc:"Skip the privacy-flow pre-pass that pins must-hide and \
                 may-expose attributes before branch and bound. The optimum \
                 is the same either way; this exists to measure the pruning.")

let request_of inst ~meth ~node_limit ~lp_mode ~jobs ~seed ~deadline_ms ~trials
    ~metrics ~static_fixing =
  Serve.Request.engine_request ~metrics inst
    {
      Serve.Request.meth;
      node_limit;
      lp_mode;
      jobs;
      seed;
      deadline_ms;
      trials;
      static_fixing;
    }

let routing_arg =
  Arg.(value & opt (some string) None
       & info [ "routing" ] ~docv:"FILE"
           ~doc:"Load the auto-portfolio routing table from $(docv) (JSON, \
                 as dumped by $(b,tune --out)) instead of the compiled-in \
                 fitted table.")

let explain_route_arg =
  Arg.(value & flag
       & info [ "explain-route" ]
           ~doc:"Report which routing rule the auto portfolio would fire \
                 for this request (method, rule, table name).")

let solve_cmd =
  let run file meth emit_view node_limit lp_mode jobs json seed deadline
      trials metrics_mode no_static_fixing routing_file explain_route =
    Option.iter
      (fun p -> Core.Engine.set_routing (load_routing p))
      routing_file;
    let spec = load ~preflight:true file in
    let inst = instance_of spec in
    let fields = ref [] in
    let field k v = fields := (k, v) :: !fields in
    if explain_route then begin
      let req0 =
        request_of inst ~meth:Core.Engine.Auto ~node_limit ~lp_mode ~jobs
          ~seed ~deadline_ms:deadline ~trials ~metrics:Svutil.Metrics.nop
          ~static_fixing:(not no_static_fixing)
      in
      let m, why = Core.Engine.choose_explain req0 in
      let table = (Core.Engine.routing ()).Core.Engine.r_name in
      if json then
        field "route"
          (Printf.sprintf {|{"method":%s,"rule":%s,"table":%s}|}
             (json_str (Core.Engine.meth_to_string m))
             (json_str why) (json_str table))
      else
        Printf.printf "route    %s  [%s]\n" (Core.Engine.meth_to_string m) why
    end;
    (* One method through the engine: print the human-readable lines
       (bound, solution, budget notes) unless --json, and always record
       the JSON field under the CLI's name for the method. *)
    let run_method (key, meth) =
      let req =
        request_of inst ~meth ~node_limit ~lp_mode ~jobs ~seed
          ~deadline_ms:deadline ~trials ~metrics:(metrics_of metrics_mode)
          ~static_fixing:(not no_static_fixing)
      in
      let r = Core.Engine.run req in
      if not json then begin
        (match r.Core.Engine.lower_bound with
        | Some b when not r.Core.Engine.proven_optimal ->
            Format.printf "%-8s %s@." (key ^ "-bound") (Rat.to_string b)
        | _ -> ());
        (match r.Core.Engine.solution with
        | Some s ->
            let label =
              if r.Core.Engine.proven_optimal then "optimal"
              else
                match r.Core.Engine.method_used with
                | Core.Engine.Exact -> "best"
                | m -> Core.Engine.meth_to_string m
            in
            Format.printf "%-8s %a@." label Core.Solution.pp s
        | None -> (
            match List.assoc_opt "refused" r.Core.Engine.stats with
            | Some reason -> Printf.printf "%s: %s\n" key reason
            | None -> Printf.printf "%s: infeasible\n" key));
        if stat_true r "limit_hit" then
          Printf.printf "(node limit %s reached after %s nodes)\n"
            (Option.value ~default:"?" (List.assoc_opt "node_limit" r.Core.Engine.stats))
            (Option.value ~default:"?" (List.assoc_opt "nodes" r.Core.Engine.stats));
        if stat_true r "deadline_hit" then
          print_endline "(deadline reached; result is not proven optimal)";
        if Svutil.Metrics.enabled r.Core.Engine.metrics then
          Printf.printf "metrics %s %s\n" key
            (Svutil.Metrics.to_json r.Core.Engine.metrics)
      end;
      field key (json_engine_result r);
      r.Core.Engine.solution
    in
    let final =
      match meth with
      | `All ->
          ignore (run_method ("greedy", Core.Engine.Greedy));
          ignore (run_method ("lp", Core.Engine.Round_set));
          run_method ("exact", Core.Engine.Exact)
      | `One (key, meth) -> run_method (key, meth)
    in
    if json then
      print_endline
        ("{"
        ^ String.concat ","
            (List.rev_map (fun (k, v) -> json_str k ^ ":" ^ v) !fields)
        ^ "}");
    if emit_view then begin
      match final with
      | None -> print_endline "no view: instance infeasible"
      | Some s ->
          let view = Core.View.materialize spec.Wf.Parse.workflow inst s in
          Format.printf "@.%a@." Core.View.pp view
    end
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve the workflow Secure-View problem.")
    Term.(const run $ file_arg $ method_arg $ emit_view_arg $ node_limit_arg
          $ lp_mode_arg $ jobs_arg $ solve_json_arg $ seed_arg $ deadline_arg
          $ trials_arg $ metrics_arg $ no_static_fixing_arg $ routing_arg
          $ explain_route_arg)

(* batch ----------------------------------------------------------------- *)

let batch_cmd =
  let files_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"FILES" ~doc:"Workflow description files.")
  in
  let run files (_, meth) node_limit lp_mode jobs seed deadline trials
      metrics_mode no_static_fixing =
    (* One JSON line per file; a file that fails to parse, lint, or
       solve yields an "ok":false line instead of aborting the batch.
       Each file gets a seed derived from the base seed and its position
       so the output is identical whatever --jobs is. *)
    let solve_file (idx, file) =
      try
        match Wf.Parse.parse_file file with
        | Error e ->
            ( Printf.sprintf {|{"file":%s,"ok":false,"error":%s}|}
                (json_str file) (json_str e),
              false,
              Svutil.Metrics.nop )
        | Ok spec -> (
            match Wfcheck.errors (Wfcheck.check_spec spec) with
            | _ :: _ as errs ->
                ( Printf.sprintf {|{"file":%s,"ok":false,"error":%s}|}
                    (json_str file)
                    (json_str
                       (Printf.sprintf "fails %d static check(s)"
                          (List.length errs))),
                  false,
                  Svutil.Metrics.nop )
            | [] ->
                let inst = instance_of spec in
                (* Fresh registry per file: parallel batch workers never
                   share a live registry. *)
                let req =
                  request_of inst ~meth ~node_limit ~lp_mode ~jobs:1
                    ~seed:(seed + idx) ~deadline_ms:deadline ~trials
                    ~metrics:(metrics_of metrics_mode)
                    ~static_fixing:(not no_static_fixing)
                in
                let r = Core.Engine.run req in
                ( Printf.sprintf {|{"file":%s,"ok":true,"result":%s}|}
                    (json_str file) (json_engine_result r),
                  true,
                  r.Core.Engine.metrics ))
      with e ->
        ( Printf.sprintf {|{"file":%s,"ok":false,"error":%s}|} (json_str file)
            (json_str (Printexc.to_string e)),
          false,
          Svutil.Metrics.nop )
    in
    let lines =
      Svutil.Par.map ~jobs solve_file (List.mapi (fun i f -> (i, f)) files)
    in
    List.iter (fun (line, _, _) -> print_endline line) lines;
    (* Run-level summary: the per-file registries merge into one
       aggregate footer line (merging is associative and commutative,
       so the footer is --jobs-independent like the rest). *)
    let merged =
      List.fold_left
        (fun acc (_, _, m) -> Svutil.Metrics.merge acc m)
        Svutil.Metrics.nop lines
    in
    if Svutil.Metrics.enabled merged then
      print_endline (json_assoc [ ("metrics", Svutil.Metrics.to_json merged) ]);
    exit (if List.for_all (fun (_, ok, _) -> ok) lines then 0 else 1)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Solve many workflow files through the engine, one JSON line per \
             file. Files are processed in parallel with --jobs; the output \
             (order and content) does not depend on the job count.")
    Term.(const run $ files_arg $ batch_method_arg $ node_limit_arg
          $ lp_mode_arg $ jobs_arg $ seed_arg $ deadline_arg $ trials_arg
          $ metrics_arg $ no_static_fixing_arg)

(* check ------------------------------------------------------------------ *)

let check_cmd =
  let hide_arg =
    Arg.(value & opt (list string) [] & info [ "hide" ] ~docv:"ATTRS"
           ~doc:"Comma-separated attributes to hide.")
  in
  let priv_arg =
    Arg.(value & opt (list string) [] & info [ "privatize" ] ~docv:"MODULES"
           ~doc:"Comma-separated public modules to privatize.")
  in
  let run file hidden privatized =
    let spec = load ~preflight:true file in
    let w = spec.Wf.Parse.workflow in
    let public = List.map fst spec.Wf.Parse.publics in
    let ok =
      List.for_all
        (fun (m : Wf.Wmodule.t) ->
          List.mem m.Wf.Wmodule.name public
          || Privacy.Standalone.is_safe m
               ~visible:(Svutil.Listx.diff (Wf.Wmodule.attr_names m) hidden)
               ~gamma:(gamma_of spec m.Wf.Wmodule.name))
        (Wf.Workflow.modules w)
      && List.for_all
           (fun p -> List.mem p privatized)
           (Privacy.Wprivacy.exposed_publics w ~public ~hidden)
    in
    let inst = instance_of spec in
    Printf.printf "view is safe (Theorem 4/8 criterion): %b\n" ok;
    Printf.printf "cost: %s\n"
      (Rat.to_string (Core.Instance.cost inst ~hidden ~privatized));
    exit (if ok then 0 else 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Check that a proposed view is safe, and price it.")
    Term.(const run $ file_arg $ hide_arg $ priv_arg)

(* flow ------------------------------------------------------------------ *)

let flow_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the analysis as a JSON object (closures, lattice \
                   levels, verdicts, bounds, findings).")
  in
  let run file json metrics_mode =
    let spec = load ~preflight:true file in
    let metrics = metrics_of metrics_mode in
    let fl = Analysis.Flow.analyze ~metrics spec in
    if json then print_endline (Analysis.Flow.to_json fl)
    else print_string (Analysis.Flow.to_text fl);
    if Svutil.Metrics.enabled metrics then
      Printf.printf "metrics %s\n" (Svutil.Metrics.to_json metrics)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Static privacy-flow analysis: dependency closures, the \
             visible-flow lattice, sound per-module Gamma bounds, and \
             must-hide / may-expose verdicts with their justifications.")
    Term.(const run $ file_arg $ json_arg $ metrics_arg)

(* delta ----------------------------------------------------------------- *)

let delta_cmd =
  let edits_arg =
    Arg.(required & opt (some string) None
         & info [ "edits" ] ~docv:"SCRIPT"
             ~doc:"Edit script to apply (see Core.Delta.parse_script: one \
                   edit per line — attr/cost/req/rewire/add/drop).")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Also re-solve the edited instance from scratch and check \
                   the incremental optimum matches; exit non-zero on drift.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit parent and incremental results as one JSON object.")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let b = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec go () =
          let n = input ic chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes b chunk 0 n;
            go ()
          end
        in
        go ();
        Buffer.contents b)
  in
  let run file edits node_limit lp_mode jobs json verify metrics_mode =
    let spec = load ~preflight:true file in
    let inst = instance_of spec in
    let script =
      match
        try Core.Delta.parse_script (read_file edits)
        with Sys_error m -> Error m
      with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "error: %s: %s\n" edits e;
          exit 2
    in
    let metrics = metrics_of metrics_mode in
    let parent =
      Core.Engine.run
        {
          (Core.Engine.default_request inst) with
          Core.Engine.node_limit;
          lp_mode;
          jobs;
        }
    in
    match
      Core.Delta.resolve ~node_limit ~lp_mode ~jobs ~metrics ~parent script
    with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
    | Ok o ->
        let r = o.Core.Delta.result in
        let reuse_str =
          match o.Core.Delta.reuse with
          | Core.Delta.Noop -> "noop"
          | Core.Delta.Scoped { dirty; total } ->
              Printf.sprintf "scoped %d/%d" dirty total
          | Core.Delta.Full -> "full"
        in
        let verified =
          if not verify then None
          else
            let scratch =
              Core.Engine.run
                {
                  (Core.Engine.default_request o.Core.Delta.edited) with
                  Core.Engine.node_limit;
                  lp_mode;
                  jobs;
                }
            in
            let cost (r : Core.Engine.result) =
              Option.map
                (fun (s : Core.Solution.t) -> s.Core.Solution.cost)
                r.Core.Engine.solution
            in
            Some
              (match (cost r, cost scratch) with
              | None, None -> Ok ()
              | Some a, Some b when Rat.equal a b -> Ok ()
              | a, b ->
                  let show = function
                    | Some c -> Rat.to_string c
                    | None -> "infeasible"
                  in
                  Error (show a, show b))
        in
        if json then
          print_endline
            (json_assoc
               ([
                  ("parent", json_engine_result parent);
                  ("delta", json_engine_result r);
                  ("reuse", json_str reuse_str);
                  ("touched", json_list o.Core.Delta.touched);
                  ("dirty", json_list o.Core.Delta.dirty);
                ]
               @
               match verified with
               | None -> []
               | Some (Ok ()) -> [ ("verified", "true") ]
               | Some (Error _) -> [ ("verified", "false") ]))
        else begin
          (match parent.Core.Engine.solution with
          | Some s -> Format.printf "parent   %a@." Core.Solution.pp s
          | None -> print_endline "parent   infeasible");
          Printf.printf "reuse    %s (%d touched, %d dirty)\n" reuse_str
            (List.length o.Core.Delta.touched)
            (List.length o.Core.Delta.dirty);
          (match r.Core.Engine.solution with
          | Some s ->
              Format.printf "%-8s %a@."
                (if r.Core.Engine.proven_optimal then "optimal" else "best")
                Core.Solution.pp s
          | None -> print_endline "edited   infeasible");
          (match verified with
          | None -> ()
          | Some (Ok ()) ->
              print_endline "verify   incremental optimum = from-scratch"
          | Some (Error _) -> ());
          if Svutil.Metrics.enabled metrics then
            Printf.printf "metrics %s\n" (Svutil.Metrics.to_json metrics)
        end;
        match verified with
        | Some (Error (inc, scr)) ->
            Printf.eprintf
              "error: optimum drift: incremental %s, from-scratch %s\n" inc scr;
            exit 1
        | _ -> ()
  in
  Cmd.v
    (Cmd.info "delta"
       ~doc:"Apply an edit script to a solved workflow and re-solve \
             incrementally (Core.Delta): no-op detection by canonical form, \
             dirty-set scoping, warm-started branch and bound.")
    Term.(const run $ file_arg $ edits_arg $ node_limit_arg $ lp_mode_arg
          $ jobs_arg $ json_arg $ verify_arg $ metrics_arg)

(* serve ----------------------------------------------------------------- *)

let serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve a Unix-domain socket at $(docv) (one connection at a \
                   time) instead of stdin/stdout.")
  in
  let cache_size_arg =
    Arg.(value & opt int 128
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"Capacity of the canonical-form solution cache (LRU \
                   entries).")
  in
  let serve_jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Total solver-parallelism slot pool. A request's own jobs \
                   field is clamped to what the pool has available; it is \
                   never refused outright.")
  in
  let verify_hits_arg =
    Arg.(value & flag
         & info [ "verify-hits" ]
             ~doc:"Differentially verify every cache hit by re-solving from \
                   scratch; a request whose cached optimum drifts fails with \
                   an internal error. Costs the solve the cache saved — for \
                   tests and CI gates.")
  in
  let run socket cache_size jobs verify_hits node_limit lp_mode deadline
      trials seed no_static_fixing =
    if cache_size < 1 then
      fail_with (Serve.Request.Usage "cache-size must be at least 1");
    if jobs < 1 then fail_with (Serve.Request.Usage "jobs must be at least 1");
    let cfg =
      {
        Serve.Daemon.cache_capacity = cache_size;
        jobs;
        defaults =
          {
            Serve.Request.default_options with
            Serve.Request.node_limit;
            lp_mode;
            deadline_ms = deadline;
            trials;
            seed;
            static_fixing = not no_static_fixing;
          };
        verify_hits;
        preflight = true;
        metrics = Svutil.Metrics.create ();
      }
    in
    match socket with
    | None -> Serve.Daemon.run_stdio cfg
    | Some path -> Serve.Daemon.run_socket cfg path
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived JSON-lines request loop in front of the engine, with \
             a canonical-form solution cache: renamed resubmissions of a \
             solved workflow are served by isomorphism transport instead of \
             a fresh solve. One request object per line on stdin (or a Unix \
             socket with --socket); ops: solve, ping, stats, shutdown. \
             SIGUSR1 dumps stats and metrics to stderr.")
    Term.(const run $ socket_arg $ cache_size_arg $ serve_jobs_arg
          $ verify_hits_arg $ node_limit_arg $ lp_mode_arg $ deadline_arg
          $ trials_arg $ seed_arg $ no_static_fixing_arg)

(* corpus ---------------------------------------------------------------- *)

let corpus_cmd =
  let seed_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "seed" ] ~docv:"N"
             ~doc:"Corpus seed; the whole instance set derives from it \
                   deterministically (default 42).")
  in
  let smoke_arg =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Small corpus: small/medium sizes only, one replica per \
                   cell — the CI smoke configuration.")
  in
  let list_arg =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"Dump the generated instances as JSON instead of running \
                   the solvers on them.")
  in
  let deadline_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "deadline" ] ~docv:"MS"
             ~doc:"Per-solve wall-clock budget in milliseconds (default: \
                   none, which keeps the recorded rows deterministic).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON document to $(docv) instead of stdout.")
  in
  let no_times_arg =
    Arg.(value & flag
         & info [ "no-times" ]
             ~doc:"Redact the time_ms fields so the row output is \
                   byte-reproducible across runs.")
  in
  let run seed_s smoke list_only deadline_s out no_times =
    let seed =
      match seed_s with None -> 42 | Some s -> parse_int ~what:"seed" s
    in
    let deadline_ms = Option.map (parse_float ~what:"deadline") deadline_s in
    let recs = Svbench.Corpus.generate ~smoke ~seed () in
    let doc =
      if list_only then Svbench.Corpus.instances_to_json ~seed recs
      else
        Svbench.Corpus.rows_to_json ~times:(not no_times) ~seed
          (Svbench.Corpus.run ?deadline_ms recs)
    in
    let text = Svutil.Json.to_string doc in
    match out with None -> print_endline text | Some f -> write_all f text
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Generate the seeded scenario corpus (five topology families \
             crossed with size, constraint-form and public-fraction axes) \
             and measure every registered solver on every instance, one \
             JSON row per (instance, method).")
    Term.(const run $ seed_opt_arg $ smoke_arg $ list_arg $ deadline_opt_arg
          $ out_arg $ no_times_arg)

(* tune ------------------------------------------------------------------ *)

let tune_cmd =
  let rows_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ROWS" ~doc:"Corpus rows JSON (from $(b,corpus)).")
  in
  let margin_arg =
    Arg.(value & opt (some string) None
         & info [ "margin" ] ~docv:"FRAC"
             ~doc:"Promotion margin: the challenger must be at least \
                   $(docv) faster in held-out geomean (default 0.02).")
  in
  let tune_json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the full fitting verdict as JSON.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the winning routing table as JSON to $(docv) \
                   (loadable with $(b,solve --routing)).")
  in
  let check_arg =
    Arg.(value & opt (some string) None
         & info [ "check" ] ~docv:"FILE"
             ~doc:"Verify that $(docv) holds exactly the refit winner and \
                   that it passes the held-out promotion gate (zero quality \
                   regressions, geomean no slower than the hand-set \
                   champion); exit 1 otherwise.")
  in
  let run rows_file margin_s json out check =
    let margin = Option.map (parse_float ~what:"margin") margin_s in
    let rows =
      match Svutil.Json.of_string (read_all rows_file) with
      | Error m -> fail_with (Serve.Request.Parse_error (rows_file ^ ": " ^ m))
      | Ok j -> (
          match Svbench.Corpus.rows_of_json j with
          | Error m ->
              fail_with (Serve.Request.Parse_error (rows_file ^ ": " ^ m))
          | Ok rows -> rows)
    in
    match check with
    | Some table_file ->
        let table = load_routing table_file in
        let _, problems = Svbench.Tune.check ?margin ~rows table in
        if problems = [] then
          print_endline
            "ok: table is the refit winner and passes the holdout gate"
        else begin
          List.iter (Printf.eprintf "error: %s\n") problems;
          exit 1
        end
    | None ->
        let v = Svbench.Tune.fit ?margin rows in
        Option.iter
          (fun f ->
            write_all f
              (Svutil.Json.to_string
                 (Core.Engine.routing_to_json v.Svbench.Tune.v_winner)))
          out;
        if json then
          print_endline
            (Svutil.Json.to_string (Svbench.Tune.verdict_to_json v))
        else begin
          let line label (t : Core.Engine.routing)
              (e : Svbench.Tune.eval) =
            Printf.printf "%-10s %-32s holdout geomean %.3f ms, %d regression(s)\n"
              label t.Core.Engine.r_name e.Svbench.Tune.e_geomean_ms
              e.Svbench.Tune.e_regressions
          in
          line "champion" v.Svbench.Tune.v_champion
            v.Svbench.Tune.v_champion_holdout;
          line "challenger" v.Svbench.Tune.v_challenger
            v.Svbench.Tune.v_challenger_holdout;
          Printf.printf "%s; winner: %s\n"
            (if v.Svbench.Tune.v_promoted then "promoted"
             else "not promoted (champion retained)")
            v.Svbench.Tune.v_winner.Core.Engine.r_name
        end
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Fit an auto-portfolio routing table from measured corpus rows \
             by champion/challenger selection: the best zero-regression \
             candidate on the training split is promoted only if it also \
             beats the hand-set champion on the held-out split.")
    Term.(const run $ rows_arg $ margin_arg $ tune_json_arg $ out_arg
          $ check_arg)

(* tradeoff ----------------------------------------------------------- *)

let tradeoff_cmd =
  let module_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"MODULE" ~doc:"Module to analyze.")
  in
  let run file name =
    let spec = load file in
    match Wf.Workflow.find_module spec.Wf.Parse.workflow name with
    | None ->
        fail_with (Serve.Request.Unknown_name (Printf.sprintf "no module %s" name))
    | Some m ->
        let cost a = List.assoc a spec.Wf.Parse.costs in
        let max_budget =
          Rat.sum (List.map cost (Wf.Wmodule.attr_names m))
        in
        Printf.printf "privacy/budget trade-off for %s (max useful budget %s)\n" name
          (Rat.to_string max_budget);
        let table = Svutil.Table.create [ "budget"; "best Gamma"; "witness hidden set" ] in
        let rec sweep b =
          if Rat.leq b max_budget then begin
            let gamma, hidden =
              Privacy.Standalone.max_gamma_under_budget m ~cost ~budget:b
            in
            Svutil.Table.add_row table
              [ Rat.to_string b; string_of_int gamma; "{" ^ String.concat "," hidden ^ "}" ];
            sweep (Rat.add b Rat.one)
          end
        in
        sweep Rat.zero;
        Svutil.Table.print table
  in
  Cmd.v
    (Cmd.info "tradeoff"
       ~doc:"Privacy level attainable per hiding budget (Section 6 extension).")
    Term.(const run $ file_arg $ module_arg)

let setup_logging verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.set_level (Some Logs.Debug) else Logs.set_level (Some Logs.Warning)

let () =
  (* --verbose anywhere on the command line enables solver tracing. *)
  setup_logging (Array.exists (( = ) "--verbose") Sys.argv);
  let argv = Array.of_list (List.filter (( <> ) "--verbose") (Array.to_list Sys.argv)) in
  let doc = "provenance views for module privacy (PODS 2011 reproduction)" in
  exit
    (Cmd.eval ~argv
       (Cmd.group (Cmd.info "secure_view_cli" ~doc)
          [
            show_cmd;
            lint_cmd;
            analyze_cmd;
            solve_cmd;
            batch_cmd;
            check_cmd;
            flow_cmd;
            delta_cmd;
            serve_cmd;
            corpus_cmd;
            tune_cmd;
            tradeoff_cmd;
          ]))
